examples/cruise_pair.ml: Array Casestudy Core Cosim Format List
