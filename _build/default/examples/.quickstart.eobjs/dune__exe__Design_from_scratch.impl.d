examples/design_from_scratch.ml: Control Core Flexray Format Linalg List Printf
