examples/dimensioning_report.mli:
