examples/design_from_scratch.mli:
