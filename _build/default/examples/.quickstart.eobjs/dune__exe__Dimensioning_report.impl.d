examples/dimensioning_report.ml: Casestudy Core Filename Format List Printf
