examples/quickstart.mli:
