(* Quickstart: take one plant from the paper's case study, compute its
   dwell-time tables, verify that two copies can share a single TT
   slot, and co-simulate the shared slot under simultaneous
   disturbances.

   Run with:  dune exec examples/quickstart.exe *)

let () =
  (* 1. a control application = plant + switching gains + requirement *)
  let c5 = Casestudy.find "C5" in
  let app name =
    Core.App.make ~name ~plant:c5.Casestudy.plant ~gains:c5.Casestudy.gains
      ~r:c5.Casestudy.r ~j_star:c5.Casestudy.j_star ()
  in
  let a = app "A" and b = app "B" in
  Format.printf "== the application's timing abstraction ==@.%a@.@." Core.App.pp a;

  (* 2. can two instances share one TT slot?  Ask the model checker. *)
  let specs = Core.Mapping.specs_of_group [ a; b ] in
  let result = Core.Dverify.verify specs in
  Format.printf "== verification ==@.%a (%d states, %.3fs)@.@."
    (Core.Dverify.pp_verdict specs) result.Core.Dverify.verdict
    result.Core.Dverify.stats.Core.Dverify.states
    result.Core.Dverify.stats.Core.Dverify.elapsed;

  (* 3. watch the slot arbitration at work: both disturbed at once *)
  let scenario =
    Cosim.Scenario.make ~apps:[ a; b ]
      ~disturbances:[ (0, "A"); (0, "B") ]
      ~horizon:40
  in
  let trace = Cosim.Engine.run scenario in
  Format.printf "== co-simulation (both disturbed at t = 0) ==@.";
  List.iter print_endline (Cosim.Trace.to_rows trace ~stride:2);
  List.iter
    (fun (sample, id) ->
      match Cosim.Trace.settling_after trace ~id ~sample with
      | Some j ->
        Format.printf "%s: settles in %d samples (budget %d)@."
          trace.Cosim.Trace.names.(id) j a.Core.App.j_star
      | None -> Format.printf "%s: did not settle@." trace.Cosim.Trace.names.(id))
    trace.Cosim.Trace.disturbances;
  Format.printf "all requirements met: %b@."
    (Cosim.Trace.meets_requirements trace [ a; b ])
