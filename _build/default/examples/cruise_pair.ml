(* The paper's Fig. 9 scenario: cruise control C6 and DC-motor position
   control C2 share slot S2; C2 is disturbed first and C6 ten samples
   later.  Neither is preempted, so both reach their dedicated-slot
   settling time J_T — and C2 does so with roughly 10 TT samples where
   the conservative baseline of Masrur et al. would hold the slot for
   its full rejection (about 15 samples).

   Run with:  dune exec examples/cruise_pair.exe *)

let () =
  let apps =
    List.map
      (fun name ->
        let a = Casestudy.find name in
        Core.App.make ~name ~plant:a.Casestudy.plant ~gains:a.Casestudy.gains
          ~r:a.Casestudy.r ~j_star:a.Casestudy.j_star ())
      [ "C6"; "C2" ]
  in
  let scenario =
    Cosim.Scenario.make ~apps ~disturbances:[ (0, "C2"); (10, "C6") ] ~horizon:60
  in
  let trace = Cosim.Engine.run scenario in

  List.iter print_endline (Cosim.Trace.to_rows trace ~stride:3);

  Format.printf "@.slot ownership:@.";
  List.iter
    (fun (id, first, last) ->
      Format.printf "  %s: samples %d..%d@." trace.Cosim.Trace.names.(id) first last)
    (Cosim.Trace.owner_intervals trace);

  let report name sample id =
    let a = List.find (fun (a : Core.App.t) -> a.Core.App.name = name) apps in
    match Cosim.Trace.settling_after trace ~id ~sample with
    | Some j ->
      Format.printf "  %s: J = %d samples (J_T = %d), TT usage = %d samples@."
        name j a.Core.App.table.Core.Dwell.jt
        (Cosim.Trace.tt_samples trace ~id)
    | None -> Format.printf "  %s: did not settle@." name
  in
  Format.printf "@.performance:@.";
  report "C2" 0 1;
  report "C6" 10 0;

  (* contrast with the baseline's conservative occupancy *)
  let c2 = Casestudy.find "C2" in
  let bp =
    Core.Baseline_params.compute c2.Casestudy.plant c2.Casestudy.gains
      ~j_star:c2.Casestudy.j_star
  in
  Format.printf
    "@.baseline slot occupancy for C2 (hold until fully rejected): %d samples@."
    bp.Core.Baseline_params.c_occ
