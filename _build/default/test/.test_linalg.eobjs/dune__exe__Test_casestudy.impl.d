test/test_casestudy.ml: Alcotest Array Casestudy Control Core Int Linalg List Printf String
