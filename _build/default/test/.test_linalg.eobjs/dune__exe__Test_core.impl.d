test/test_core.ml: Alcotest Array Control Core Filename Float Lazy Linalg List Printf QCheck2 QCheck_alcotest Result Sched String Sys Unix
