test/test_flexray.mli:
