test/test_linalg.ml: Alcotest Array Complex Float Linalg List QCheck2 QCheck_alcotest
