test/test_integration.ml: Alcotest Array Casestudy Core Cosim Lazy List Printf Sched String
