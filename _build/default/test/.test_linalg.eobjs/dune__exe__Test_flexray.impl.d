test/test_flexray.ml: Alcotest Flexray List QCheck2 QCheck_alcotest
