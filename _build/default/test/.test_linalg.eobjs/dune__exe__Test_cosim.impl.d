test/test_cosim.ml: Alcotest Array Control Core Cosim Filename Flexray Float Linalg List Printf Result String Sys
