test/test_sched.ml: Alcotest Array Int List QCheck2 QCheck_alcotest Sched
