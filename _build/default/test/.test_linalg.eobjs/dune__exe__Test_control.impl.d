test/test_control.ml: Alcotest Array Casestudy Complex Control Core Float Linalg List Printf QCheck2 QCheck_alcotest String
