test/test_ta.ml: Alcotest Array List QCheck2 QCheck_alcotest String Ta
