(* Tests for the FlexRay substrate: configuration, dynamic-segment
   arbitration, the cycle simulator, and the WCRT analysis. *)

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let cfg =
  Flexray.Config.make ~static_slot_count:4 ~static_slot_us:50 ~minislot_count:20
    ~minislot_us:2

(* ------------------------------------------------------------------ *)
(* Config *)

let test_config_arithmetic () =
  check_int "static" 200 (Flexray.Config.static_us cfg);
  check_int "dynamic" 40 (Flexray.Config.dynamic_us cfg);
  check_int "cycle" 240 (Flexray.Config.cycle_us cfg);
  check_int "slot start" (240 + 100)
    (Flexray.Config.static_slot_start cfg ~cycle:1 ~slot:2)

let test_config_validation () =
  let raises f = try f (); false with Invalid_argument _ -> true in
  check_bool "zero slots" true
    (raises (fun () ->
         ignore
           (Flexray.Config.make ~static_slot_count:0 ~static_slot_us:1
              ~minislot_count:1 ~minislot_us:1)));
  check_bool "bad slot index" true
    (raises (fun () ->
         ignore (Flexray.Config.static_slot_start cfg ~cycle:0 ~slot:4)))

(* ------------------------------------------------------------------ *)
(* Frames *)

let test_frame_constructors () =
  let raises f = try f (); false with Invalid_argument _ -> true in
  check_bool "bad id" true
    (raises (fun () -> ignore (Flexray.Frame.dynamic ~frame_id:0 ~length_minislots:1)));
  check_bool "priority order" true
    (Flexray.Frame.priority (Flexray.Frame.static ~slot:0)
     < Flexray.Frame.priority (Flexray.Frame.dynamic ~frame_id:1 ~length_minislots:1))

(* ------------------------------------------------------------------ *)
(* Dynamic segment arbitration *)

let test_arbitrate_priority_order () =
  let sent, leftover =
    Flexray.Dynamic_segment.arbitrate ~minislot_count:20
      ~pending:[ (3, 5); (1, 4) ]
  in
  (match sent with
   | [ a; b ] ->
     check_int "id 1 first" 1 a.Flexray.Dynamic_segment.frame_id;
     check_int "starts at 0" 0 a.Flexray.Dynamic_segment.start_minislot;
     check_int "id 3 second" 3 b.Flexray.Dynamic_segment.frame_id;
     (* id 2 absent: one empty minislot after frame 1's four *)
     check_int "start after gap" 5 b.Flexray.Dynamic_segment.start_minislot
   | _ -> Alcotest.fail "expected 2 transmissions");
  check_bool "nothing left" true (leftover = [])

let test_arbitrate_overflow_waits () =
  (* the second frame does not fit and must wait *)
  let sent, leftover =
    Flexray.Dynamic_segment.arbitrate ~minislot_count:10
      ~pending:[ (1, 8); (2, 5) ]
  in
  check_int "one sent" 1 (List.length sent);
  check_bool "id 2 left over" true (leftover = [ (2, 5) ])

let test_arbitrate_low_priority_starvation () =
  (* a lower-id frame consumes the room every cycle *)
  let _, leftover =
    Flexray.Dynamic_segment.arbitrate ~minislot_count:10
      ~pending:[ (1, 9); (2, 3) ]
  in
  check_bool "starved this cycle" true (List.mem (2, 3) leftover)

let test_arbitrate_validation () =
  let raises f = try f (); false with Invalid_argument _ -> true in
  check_bool "duplicate ids" true
    (raises (fun () ->
         ignore
           (Flexray.Dynamic_segment.arbitrate ~minislot_count:5
              ~pending:[ (1, 1); (1, 2) ])))

(* ------------------------------------------------------------------ *)
(* Bus simulation *)

let test_static_deterministic_delay () =
  let msg = { Flexray.Bus.frame = Flexray.Frame.static ~slot:2; release_us = 10 } in
  match Flexray.Bus.simulate cfg ~until_us:1000 [ msg ] with
  | [ d ] ->
    (* slot 2 starts at 100 in cycle 0; release 10 <= 100, delivered at
       slot end 150 *)
    check_int "delivered" 150 d.Flexray.Bus.delivered_us;
    check_int "delay" 140 (Flexray.Bus.delay_us d)
  | _ -> Alcotest.fail "expected one delivery"

let test_static_misses_slot_waits_cycle () =
  let msg = { Flexray.Bus.frame = Flexray.Frame.static ~slot:0; release_us = 10 } in
  match Flexray.Bus.simulate cfg ~until_us:1000 [ msg ] with
  | [ d ] ->
    (* slot 0 of cycle 0 started at 0 (before release): wait for cycle 1 *)
    check_int "next cycle" (240 + 50) d.Flexray.Bus.delivered_us
  | _ -> Alcotest.fail "expected one delivery"

let test_dynamic_delivery_and_contention () =
  let m1 = { Flexray.Bus.frame = Flexray.Frame.dynamic ~frame_id:1 ~length_minislots:18; release_us = 0 } in
  let m2 = { Flexray.Bus.frame = Flexray.Frame.dynamic ~frame_id:2 ~length_minislots:5; release_us = 0 } in
  let ds = Flexray.Bus.simulate cfg ~until_us:2000 [ m1; m2 ] in
  check_int "both delivered" 2 (List.length ds);
  let find id =
    List.find
      (fun d ->
        match d.Flexray.Bus.message.Flexray.Bus.frame with
        | Flexray.Frame.Dynamic { frame_id; _ } -> frame_id = id
        | Flexray.Frame.Static _ -> false)
      ds
  in
  (* frame 1 fills 18 of 20 minislots in cycle 0; frame 2 cannot fit
     and goes in cycle 1 *)
  check_int "f1 in cycle 0" (200 + 36) (find 1).Flexray.Bus.delivered_us;
  check_bool "f2 in cycle 1" true ((find 2).Flexray.Bus.delivered_us > 240)

let test_dynamic_fifo_per_id () =
  (* two messages on the same id: oldest first, one per cycle *)
  let m k =
    { Flexray.Bus.frame = Flexray.Frame.dynamic ~frame_id:1 ~length_minislots:3;
      release_us = k }
  in
  let ds = Flexray.Bus.simulate cfg ~until_us:2000 [ m 5; m 0 ] in
  match List.map (fun d -> (d.Flexray.Bus.message.Flexray.Bus.release_us, d.Flexray.Bus.delivered_us)) ds with
  | [ (0, t1); (5, t2) ] ->
    check_bool "ordered" true (t1 < t2);
    check_bool "different cycles" true (t2 - t1 >= 240 - 6)
  | _ -> Alcotest.fail "unexpected deliveries"

(* ------------------------------------------------------------------ *)
(* WCRT *)

let test_wcrt_alone () =
  (* no interference: delayed by at most one full cycle plus segment *)
  match Flexray.Wcrt.wcrt_us cfg ~own_id:1 ~own_length:5 [] with
  | Some w -> check_int "one cycle + segment" (240 + 240) w
  | None -> Alcotest.fail "expected a bound"

let test_wcrt_starvation_detected () =
  (* a frame that never fits alongside the higher-priority load *)
  let hp = [ { Flexray.Wcrt.length_minislots = 19; period_cycles = 1 } ] in
  check_bool "starvation" true
    (Flexray.Wcrt.blocked_cycles_bound ~minislot_count:20 ~own_id:2
       ~own_length:5 hp
     = None)

let test_wcrt_bound_is_upper_bound_on_sim () =
  (* simulate the worst phasing we can construct and compare *)
  let hp_frame = { Flexray.Wcrt.length_minislots = 12; period_cycles = 2 } in
  let bound =
    Flexray.Wcrt.wcrt_us cfg ~own_id:2 ~own_length:10 [ hp_frame ]
  in
  (match bound with
   | None -> Alcotest.fail "expected a bound"
   | Some w ->
     (* adversarial release: hp released every 2 cycles on id 1, our
        frame released right after a dynamic segment start *)
     let mk_hp k =
       { Flexray.Bus.frame = Flexray.Frame.dynamic ~frame_id:1 ~length_minislots:12;
         release_us = k * 480 }
     in
     let own =
       { Flexray.Bus.frame = Flexray.Frame.dynamic ~frame_id:2 ~length_minislots:10;
         release_us = 201 }
     in
     let ds =
       Flexray.Bus.simulate cfg ~until_us:10_000
         (own :: List.init 10 mk_hp)
     in
     let own_delivery =
       List.find
         (fun d ->
           match d.Flexray.Bus.message.Flexray.Bus.frame with
           | Flexray.Frame.Dynamic { frame_id; _ } -> frame_id = 2
           | Flexray.Frame.Static _ -> false)
         ds
     in
     check_bool "bound covers simulation" true
       (Flexray.Bus.delay_us own_delivery <= w))

let test_one_sample_assumption () =
  (* the paper's design point: ET worst case within one 20 ms period *)
  let auto = Flexray.Config.default_automotive in
  let hp =
    List.init 5 (fun _ -> { Flexray.Wcrt.length_minislots = 20; period_cycles = 5 })
  in
  check_bool "one-sample delay holds" true
    (Flexray.Wcrt.one_sample_delay_ok auto ~h_us:20_000 ~own_id:6 ~own_length:10 hp);
  (* and a pathological load breaks it *)
  let overload =
    [ { Flexray.Wcrt.length_minislots = 199; period_cycles = 1 } ]
  in
  check_bool "overload breaks it" false
    (Flexray.Wcrt.one_sample_delay_ok auto ~h_us:20_000 ~own_id:2 ~own_length:10
       overload)

(* ------------------------------------------------------------------ *)
(* Properties *)

let gen_pending =
  QCheck2.Gen.(
    let* n = int_range 0 6 in
    let* lens = list_size (return n) (int_range 1 6) in
    let ids = List.mapi (fun i l -> (i + 1, l)) lens in
    return ids)

let prop_arbitration_conserves_frames =
  QCheck2.Test.make ~name:"arbitration loses no frame" ~count:100 gen_pending
    (fun pending ->
      let sent, leftover =
        Flexray.Dynamic_segment.arbitrate ~minislot_count:12 ~pending
      in
      List.length sent + List.length leftover = List.length pending)

let prop_transmissions_disjoint =
  QCheck2.Test.make ~name:"transmissions never overlap" ~count:100 gen_pending
    (fun pending ->
      let sent, _ =
        Flexray.Dynamic_segment.arbitrate ~minislot_count:12 ~pending
      in
      let rec ok = function
        | a :: (b :: _ as rest) ->
          a.Flexray.Dynamic_segment.start_minislot
           + a.Flexray.Dynamic_segment.length_minislots
          <= b.Flexray.Dynamic_segment.start_minislot
          && ok rest
        | [ _ ] | [] -> true
      in
      ok sent)

let prop_transmissions_fit_segment =
  QCheck2.Test.make ~name:"transmissions fit the segment" ~count:100 gen_pending
    (fun pending ->
      let sent, _ =
        Flexray.Dynamic_segment.arbitrate ~minislot_count:12 ~pending
      in
      List.for_all
        (fun t ->
          t.Flexray.Dynamic_segment.start_minislot
           + t.Flexray.Dynamic_segment.length_minislots
          <= 12)
        sent)

let props =
  List.map QCheck_alcotest.to_alcotest
    [
      prop_arbitration_conserves_frames;
      prop_transmissions_disjoint;
      prop_transmissions_fit_segment;
    ]

let () =
  Alcotest.run "flexray"
    [
      ( "config",
        [
          Alcotest.test_case "arithmetic" `Quick test_config_arithmetic;
          Alcotest.test_case "validation" `Quick test_config_validation;
        ] );
      ("frame", [ Alcotest.test_case "constructors" `Quick test_frame_constructors ]);
      ( "dynamic segment",
        [
          Alcotest.test_case "priority order" `Quick test_arbitrate_priority_order;
          Alcotest.test_case "overflow waits" `Quick test_arbitrate_overflow_waits;
          Alcotest.test_case "starvation" `Quick test_arbitrate_low_priority_starvation;
          Alcotest.test_case "validation" `Quick test_arbitrate_validation;
        ] );
      ( "bus",
        [
          Alcotest.test_case "static delay" `Quick test_static_deterministic_delay;
          Alcotest.test_case "missed slot" `Quick test_static_misses_slot_waits_cycle;
          Alcotest.test_case "dynamic contention" `Quick test_dynamic_delivery_and_contention;
          Alcotest.test_case "per-id FIFO" `Quick test_dynamic_fifo_per_id;
        ] );
      ( "wcrt",
        [
          Alcotest.test_case "no interference" `Quick test_wcrt_alone;
          Alcotest.test_case "starvation detected" `Quick test_wcrt_starvation_detected;
          Alcotest.test_case "bounds simulation" `Quick test_wcrt_bound_is_upper_bound_on_sim;
          Alcotest.test_case "one-sample assumption" `Quick test_one_sample_assumption;
        ] );
      ("properties", props);
    ]
