(* Unit and property tests for the linalg substrate. *)

let check_float = Alcotest.(check (float 1e-9))
let check_float_loose = Alcotest.(check (float 1e-6))
let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* ------------------------------------------------------------------ *)
(* Vec *)

let test_vec_basic () =
  let v = Linalg.Vec.of_list [ 1.; 2.; 3. ] in
  check_int "dim" 3 (Linalg.Vec.dim v);
  check_float "dot" 14. (Linalg.Vec.dot v v);
  check_float "norm2" (sqrt 14.) (Linalg.Vec.norm2 v);
  check_float "norm_inf" 3. (Linalg.Vec.norm_inf v);
  let w = Linalg.Vec.add v (Linalg.Vec.scale 2. v) in
  check_bool "add/scale" true
    (Linalg.Vec.approx_equal w (Linalg.Vec.of_list [ 3.; 6.; 9. ]))

let test_vec_basis () =
  let e1 = Linalg.Vec.basis 4 1 in
  check_float "basis entry" 1. e1.(1);
  check_float "basis other" 0. e1.(0);
  Alcotest.check_raises "basis range" (Invalid_argument "Vec.basis: index out of range")
    (fun () -> ignore (Linalg.Vec.basis 3 3))

let test_vec_axpy_slice () =
  let x = Linalg.Vec.of_list [ 1.; 1. ] and y = Linalg.Vec.of_list [ 0.; 2. ] in
  check_bool "axpy" true
    (Linalg.Vec.approx_equal (Linalg.Vec.axpy 3. x y) (Linalg.Vec.of_list [ 3.; 5. ]));
  let v = Linalg.Vec.of_list [ 0.; 1.; 2.; 3. ] in
  check_bool "slice" true
    (Linalg.Vec.approx_equal
       (Linalg.Vec.sub_vec v ~pos:1 ~len:2)
       (Linalg.Vec.of_list [ 1.; 2. ]));
  check_bool "concat" true
    (Linalg.Vec.approx_equal
       (Linalg.Vec.concat [| 1. |] [| 2. |])
       (Linalg.Vec.of_list [ 1.; 2. ]))

let test_vec_mismatch () =
  Alcotest.check_raises "dot mismatch"
    (Invalid_argument "Vec.dot: dimension mismatch (2 vs 3)") (fun () ->
      ignore (Linalg.Vec.dot [| 1.; 2. |] [| 1.; 2.; 3. |]))

(* ------------------------------------------------------------------ *)
(* Mat *)

let m22 a b c d = Linalg.Mat.of_rows [ [ a; b ]; [ c; d ] ]

let test_mat_mul () =
  let a = m22 1. 2. 3. 4. and b = m22 5. 6. 7. 8. in
  let c = Linalg.Mat.mul a b in
  check_bool "mul" true (Linalg.Mat.approx_equal c (m22 19. 22. 43. 50.));
  let v = Linalg.Mat.mul_vec a [| 1.; 1. |] in
  check_bool "mul_vec" true (Linalg.Vec.approx_equal v [| 3.; 7. |])

let test_mat_identity_pow () =
  let a = m22 1. 1. 0. 1. in
  let a5 = Linalg.Mat.pow a 5 in
  check_float "pow shear" 5. (Linalg.Mat.get a5 0 1);
  check_bool "pow zero" true
    (Linalg.Mat.approx_equal (Linalg.Mat.pow a 0) (Linalg.Mat.identity 2))

let test_mat_stack_block () =
  let a = m22 1. 2. 3. 4. in
  let h = Linalg.Mat.hstack a a in
  check_int "hstack cols" 4 (Linalg.Mat.cols h);
  let v = Linalg.Mat.vstack a a in
  check_int "vstack rows" 4 (Linalg.Mat.rows v);
  let blk = Linalg.Mat.block [ [ a; a ]; [ a; a ] ] in
  check_int "block rows" 4 (Linalg.Mat.rows blk);
  check_float "block entry" 4. (Linalg.Mat.get blk 3 3)

let test_mat_kron () =
  let a = m22 1. 2. 3. 4. and i = Linalg.Mat.identity 2 in
  let k = Linalg.Mat.kron a i in
  check_int "kron size" 4 (Linalg.Mat.rows k);
  check_float "kron (0,0)" 1. (Linalg.Mat.get k 0 0);
  check_float "kron (0,2)" 2. (Linalg.Mat.get k 0 2);
  check_float "kron (1,3)" 2. (Linalg.Mat.get k 1 3)

let test_mat_trace_norms () =
  let a = m22 1. (-2.) 3. 4. in
  check_float "trace" 5. (Linalg.Mat.trace a);
  check_float "norm_inf" 7. (Linalg.Mat.norm_inf a);
  check_float "norm_fro" (sqrt 30.) (Linalg.Mat.norm_fro a)

(* ------------------------------------------------------------------ *)
(* Lu *)

let test_lu_solve () =
  let a = Linalg.Mat.of_rows [ [ 2.; 1.; 1. ]; [ 1.; 3.; 2. ]; [ 1.; 0.; 0. ] ] in
  let b = [| 4.; 5.; 6. |] in
  let x = Linalg.Lu.solve a b in
  let r = Linalg.Vec.sub (Linalg.Mat.mul_vec a x) b in
  check_float "residual" 0. (Linalg.Vec.norm_inf r)

let test_lu_det_inverse () =
  let a = m22 4. 7. 2. 6. in
  check_float "det" 10. (Linalg.Lu.det a);
  let inv = Linalg.Lu.inverse a in
  check_bool "inverse" true
    (Linalg.Mat.approx_equal (Linalg.Mat.mul a inv) (Linalg.Mat.identity 2))

let test_lu_singular () =
  let a = m22 1. 2. 2. 4. in
  check_float "det singular" 0. (Linalg.Lu.det a);
  Alcotest.check_raises "solve singular" Linalg.Lu.Singular (fun () ->
      ignore (Linalg.Lu.solve a [| 1.; 1. |]))

let test_lu_rank () =
  check_int "full rank" 2 (Linalg.Lu.rank (m22 1. 2. 3. 4.));
  check_int "rank 1" 1 (Linalg.Lu.rank (m22 1. 2. 2. 4.));
  let rect = Linalg.Mat.of_rows [ [ 1.; 0.; 1. ]; [ 0.; 1.; 1. ] ] in
  check_int "rect rank" 2 (Linalg.Lu.rank rect)

(* ------------------------------------------------------------------ *)
(* Poly *)

let test_poly_eval () =
  let p = Linalg.Poly.of_coeffs [ 1.; -3.; 2. ] in
  (* 2x^2 - 3x + 1; roots 1 and 1/2 *)
  check_float "eval 1" 0. (Linalg.Poly.eval p 1.);
  check_float "eval 0.5" 0. (Linalg.Poly.eval p 0.5);
  check_float "eval 2" 3. (Linalg.Poly.eval p 2.)

let test_poly_roots_mul () =
  let p = Linalg.Poly.from_roots [ 1.; 2.; 3. ] in
  check_int "degree" 3 (Linalg.Poly.degree p);
  check_float "root" 0. (Linalg.Poly.eval p 2.);
  let q = Linalg.Poly.mul p (Linalg.Poly.of_coeffs [ 0.; 1. ]) in
  check_int "mul degree" 4 (Linalg.Poly.degree q);
  check_float "mul root 0" 0. (Linalg.Poly.eval q 0.)

let test_poly_conjugates () =
  (* roots 1±2i -> x^2 - 2x + 5 *)
  let p = Linalg.Poly.from_conjugate_pairs [ (1., 2.) ] in
  check_bool "quad" true
    (Linalg.Poly.approx_equal p (Linalg.Poly.of_coeffs [ 5.; -2.; 1. ]));
  let lin = Linalg.Poly.from_conjugate_pairs [ (3., 0.) ] in
  check_int "real pair degree" 1 (Linalg.Poly.degree lin)

let test_poly_derivative () =
  let p = Linalg.Poly.of_coeffs [ 1.; 2.; 3. ] in
  check_bool "derivative" true
    (Linalg.Poly.approx_equal (Linalg.Poly.derivative p)
       (Linalg.Poly.of_coeffs [ 2.; 6. ]))

let test_poly_eval_mat () =
  let a = m22 2. 0. 0. 3. in
  (* p(x) = x^2 - 5x + 6 annihilates both eigenvalues 2, 3 *)
  let p = Linalg.Poly.of_coeffs [ 6.; -5.; 1. ] in
  let pa = Linalg.Poly.eval_mat p a in
  check_float "annihilated" 0. (Linalg.Mat.norm_fro pa)

(* ------------------------------------------------------------------ *)
(* Eig *)

let test_charpoly () =
  let a = m22 2. 1. 0. 3. in
  (* (x-2)(x-3) = x^2 -5x + 6 *)
  check_bool "charpoly" true
    (Linalg.Poly.approx_equal (Linalg.Eig.charpoly a)
       (Linalg.Poly.of_coeffs [ 6.; -5.; 1. ]))

let test_eigenvalues_real () =
  let a = m22 2. 1. 0. 3. in
  match Linalg.Eig.eigenvalues a with
  | [ z1; z2 ] ->
    check_float_loose "largest" 3. z1.Complex.re;
    check_float_loose "smallest" 2. z2.Complex.re;
    check_float "imag 1" 0. z1.Complex.im;
    check_float "imag 2" 0. z2.Complex.im
  | _ -> Alcotest.fail "expected 2 eigenvalues"

let test_eigenvalues_complex () =
  (* rotation-like matrix, eigenvalues cos t ± i sin t with |z| = r *)
  let r = 0.9 and t = 0.7 in
  let a = m22 (r *. cos t) (-.r *. sin t) (r *. sin t) (r *. cos t) in
  match Linalg.Eig.eigenvalues a with
  | [ z1; z2 ] ->
    check_float_loose "modulus 1" r (Complex.norm z1);
    check_float_loose "modulus 2" r (Complex.norm z2);
    check_float_loose "conjugate" 0. (z1.Complex.im +. z2.Complex.im)
  | _ -> Alcotest.fail "expected 2 eigenvalues"

let test_spectral_radius_stability () =
  let stable = m22 0.5 0.2 0. 0.3 in
  check_bool "stable" true (Linalg.Eig.is_schur_stable stable);
  let unstable = m22 1.1 0. 0. 0.2 in
  check_bool "unstable" false (Linalg.Eig.is_schur_stable unstable);
  check_float_loose "radius" 1.1 (Linalg.Eig.spectral_radius unstable)

let test_sym_eigenvalues () =
  let a = m22 2. 1. 1. 2. in
  let e = Linalg.Eig.sym_eigenvalues a in
  check_float_loose "min" 1. e.(0);
  check_float_loose "max" 3. e.(1)

(* ------------------------------------------------------------------ *)
(* Lyapunov *)

let test_cholesky () =
  let a = m22 4. 2. 2. 3. in
  (match Linalg.Lyapunov.cholesky a with
   | None -> Alcotest.fail "expected PD"
   | Some l ->
     check_bool "l lT = a" true
       (Linalg.Mat.approx_equal (Linalg.Mat.mul l (Linalg.Mat.transpose l)) a));
  check_bool "not PD" true (Linalg.Lyapunov.cholesky (m22 1. 2. 2. 1.) = None)

let test_definiteness () =
  check_bool "pd" true (Linalg.Lyapunov.is_positive_definite (m22 2. 0. 0. 2.));
  check_bool "nd" true (Linalg.Lyapunov.is_negative_definite (m22 (-2.) 0. 0. (-2.)));
  check_bool "indef" false (Linalg.Lyapunov.is_positive_definite (m22 1. 0. 0. (-1.)))

let test_solve_discrete () =
  let a = m22 0.5 0.1 0. 0.4 in
  let q = Linalg.Mat.identity 2 in
  let p = Linalg.Lyapunov.solve_discrete a q in
  check_float "residual" 0. (Linalg.Lyapunov.residual a q p);
  check_bool "pd solution" true (Linalg.Lyapunov.is_positive_definite p)

let test_common_lyapunov_exists () =
  (* two commuting stable diagonal matrices always share a certificate *)
  let a1 = m22 0.5 0. 0. 0.3 and a2 = m22 0.2 0. 0. 0.6 in
  match Linalg.Lyapunov.common_lyapunov a1 a2 with
  | None -> Alcotest.fail "expected common certificate"
  | Some p -> check_bool "pd" true (Linalg.Lyapunov.is_positive_definite p)

(* ------------------------------------------------------------------ *)
(* Properties *)

let small_float = QCheck2.Gen.float_range (-5.) 5.

let gen_mat n =
  QCheck2.Gen.(
    array_size (return (n * n)) small_float
    |> map (fun a -> Linalg.Mat.of_array ~rows:n ~cols:n a))

let gen_stable_mat n =
  (* scale a random matrix below unit spectral radius via its inf norm *)
  QCheck2.Gen.map
    (fun m ->
      let s = Linalg.Mat.norm_inf m in
      if s = 0. then m else Linalg.Mat.scale (0.8 /. s) m)
    (gen_mat n)

let prop_mul_assoc =
  QCheck2.Test.make ~name:"mat mul associative" ~count:100
    QCheck2.Gen.(triple (gen_mat 3) (gen_mat 3) (gen_mat 3))
    (fun (a, b, c) ->
      Linalg.Mat.approx_equal ~tol:1e-6
        (Linalg.Mat.mul (Linalg.Mat.mul a b) c)
        (Linalg.Mat.mul a (Linalg.Mat.mul b c)))

let prop_transpose_involution =
  QCheck2.Test.make ~name:"transpose involutive" ~count:100 (gen_mat 4)
    (fun a -> Linalg.Mat.approx_equal (Linalg.Mat.transpose (Linalg.Mat.transpose a)) a)

let prop_lu_roundtrip =
  QCheck2.Test.make ~name:"lu solve roundtrip" ~count:100
    QCheck2.Gen.(pair (gen_mat 3) (array_size (return 3) small_float))
    (fun (a, b) ->
      match Linalg.Lu.solve a b with
      | exception Linalg.Lu.Singular -> true
      | x ->
        let scale = Float.max 1. (Linalg.Mat.norm_inf a *. Linalg.Vec.norm_inf x) in
        Linalg.Vec.norm_inf (Linalg.Vec.sub (Linalg.Mat.mul_vec a x) b)
        <= 1e-6 *. scale)

let prop_det_transpose =
  QCheck2.Test.make ~name:"det of transpose" ~count:100 (gen_mat 3) (fun a ->
      let d1 = Linalg.Lu.det a and d2 = Linalg.Lu.det (Linalg.Mat.transpose a) in
      Float.abs (d1 -. d2) <= 1e-6 *. Float.max 1. (Float.abs d1))

let prop_charpoly_cayley_hamilton =
  QCheck2.Test.make ~name:"Cayley-Hamilton" ~count:60 (gen_mat 3) (fun a ->
      let p = Linalg.Eig.charpoly a in
      let norm = Float.max 1. (Linalg.Mat.norm_inf a) in
      Linalg.Mat.norm_fro (Linalg.Poly.eval_mat p a)
      <= 1e-5 *. (norm ** 3.))

let prop_eigs_match_det_trace =
  QCheck2.Test.make ~name:"eig product=det, sum=trace" ~count:60 (gen_mat 3)
    (fun a ->
      let eigs = Linalg.Eig.eigenvalues a in
      let prod = List.fold_left Complex.mul Complex.one eigs in
      let sum = List.fold_left Complex.add Complex.zero eigs in
      let scale = Float.max 1. (Linalg.Mat.norm_inf a ** 3.) in
      Float.abs (prod.re -. Linalg.Lu.det a) <= 1e-4 *. scale
      && Float.abs (sum.re -. Linalg.Mat.trace a) <= 1e-4 *. scale
      && Float.abs prod.im <= 1e-4 *. scale)

let prop_lyapunov_certifies_stability =
  QCheck2.Test.make ~name:"Stein solution certifies Schur stability"
    ~count:60 (gen_stable_mat 3) (fun a ->
      (* inf-norm < 1 implies Schur stable, so the Stein equation with
         Q = I must have a PD solution *)
      match Linalg.Lyapunov.solve_discrete a (Linalg.Mat.identity 3) with
      | exception Linalg.Lu.Singular -> true
      | p ->
        Linalg.Lyapunov.is_positive_definite p
        && Linalg.Lyapunov.residual a (Linalg.Mat.identity 3) p <= 1e-7)

let prop_poly_mul_eval_homomorphism =
  QCheck2.Test.make ~name:"poly eval is a ring homomorphism" ~count:100
    QCheck2.Gen.(
      triple
        (array_size (int_range 1 5) small_float)
        (array_size (int_range 1 5) small_float)
        small_float)
    (fun (p, q, x) ->
      let lhs = Linalg.Poly.eval (Linalg.Poly.mul p q) x in
      let rhs = Linalg.Poly.eval p x *. Linalg.Poly.eval q x in
      Float.abs (lhs -. rhs) <= 1e-6 *. Float.max 1. (Float.abs rhs))

let props =
  List.map QCheck_alcotest.to_alcotest
    [
      prop_mul_assoc;
      prop_transpose_involution;
      prop_lu_roundtrip;
      prop_det_transpose;
      prop_charpoly_cayley_hamilton;
      prop_eigs_match_det_trace;
      prop_lyapunov_certifies_stability;
      prop_poly_mul_eval_homomorphism;
    ]

let () =
  Alcotest.run "linalg"
    [
      ( "vec",
        [
          Alcotest.test_case "basic ops" `Quick test_vec_basic;
          Alcotest.test_case "basis" `Quick test_vec_basis;
          Alcotest.test_case "axpy/slice/concat" `Quick test_vec_axpy_slice;
          Alcotest.test_case "dimension mismatch" `Quick test_vec_mismatch;
        ] );
      ( "mat",
        [
          Alcotest.test_case "multiplication" `Quick test_mat_mul;
          Alcotest.test_case "identity and pow" `Quick test_mat_identity_pow;
          Alcotest.test_case "stack and block" `Quick test_mat_stack_block;
          Alcotest.test_case "kronecker" `Quick test_mat_kron;
          Alcotest.test_case "trace and norms" `Quick test_mat_trace_norms;
        ] );
      ( "lu",
        [
          Alcotest.test_case "solve" `Quick test_lu_solve;
          Alcotest.test_case "det and inverse" `Quick test_lu_det_inverse;
          Alcotest.test_case "singular" `Quick test_lu_singular;
          Alcotest.test_case "rank" `Quick test_lu_rank;
        ] );
      ( "poly",
        [
          Alcotest.test_case "eval" `Quick test_poly_eval;
          Alcotest.test_case "roots and mul" `Quick test_poly_roots_mul;
          Alcotest.test_case "conjugate pairs" `Quick test_poly_conjugates;
          Alcotest.test_case "derivative" `Quick test_poly_derivative;
          Alcotest.test_case "matrix eval" `Quick test_poly_eval_mat;
        ] );
      ( "eig",
        [
          Alcotest.test_case "charpoly" `Quick test_charpoly;
          Alcotest.test_case "real eigenvalues" `Quick test_eigenvalues_real;
          Alcotest.test_case "complex eigenvalues" `Quick test_eigenvalues_complex;
          Alcotest.test_case "spectral radius" `Quick test_spectral_radius_stability;
          Alcotest.test_case "symmetric eigenvalues" `Quick test_sym_eigenvalues;
        ] );
      ( "lyapunov",
        [
          Alcotest.test_case "cholesky" `Quick test_cholesky;
          Alcotest.test_case "definiteness" `Quick test_definiteness;
          Alcotest.test_case "stein equation" `Quick test_solve_discrete;
          Alcotest.test_case "common certificate" `Quick test_common_lyapunov_exists;
        ] );
      ("properties", props);
    ]
