(* Paper-facing tests: the six case-study applications reproduce the
   published Table 1 within the documented tolerance, and the
   motivational example of Sec. 3.1 reproduces Fig. 2. *)

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_float_loose = Alcotest.(check (float 1e-6))

let table_of (a : Casestudy.app) =
  Core.Dwell.compute a.Casestudy.plant a.Casestudy.gains ~j_star:a.Casestudy.j_star

(* Entries may differ from the printed table by at most this many
   samples: the paper's plant/controller constants are truncated to 4-5
   digits (see DESIGN.md). *)
let tolerance = 2

let within_tol a b = abs (a - b) <= tolerance

let test_app_data_consistency () =
  check_int "six apps" 6 (List.length Casestudy.all);
  List.iter
    (fun (a : Casestudy.app) ->
      check_bool (a.Casestudy.name ^ " J* < r") true
        (a.Casestudy.j_star < a.Casestudy.r);
      check_float_loose "h" Casestudy.h a.Casestudy.plant.Control.Plant.h;
      (* gains have consistent dimensions by construction; plants must
         be controllable for the designs to exist *)
      check_bool (a.Casestudy.name ^ " controllable") true
        (Control.Ctrb.is_controllable a.Casestudy.plant.Control.Plant.phi
           a.Casestudy.plant.Control.Plant.gamma))
    Casestudy.all

let test_find () =
  check_bool "find C3" true (String.equal (Casestudy.find "C3").Casestudy.name "C3");
  check_bool "missing" true
    (try ignore (Casestudy.find "C9"); false with Not_found -> true)

let test_closed_loops_stable () =
  List.iter
    (fun (a : Casestudy.app) ->
      let tt =
        Control.Feedback.closed_loop_tt a.Casestudy.plant
          a.Casestudy.gains.Control.Switched.kt
      in
      let et =
        Control.Feedback.closed_loop_et a.Casestudy.plant
          a.Casestudy.gains.Control.Switched.ke
      in
      check_bool (a.Casestudy.name ^ " TT stable") true (Linalg.Eig.is_schur_stable tt);
      check_bool (a.Casestudy.name ^ " ET stable") true (Linalg.Eig.is_schur_stable et))
    Casestudy.all

let check_row (a : Casestudy.app) =
  let t = table_of a in
  let p = Casestudy.paper a in
  check_bool
    (Printf.sprintf "%s JT %d vs paper %d" a.Casestudy.name t.Core.Dwell.jt p.Casestudy.p_jt)
    true
    (within_tol t.Core.Dwell.jt p.Casestudy.p_jt);
  check_bool
    (Printf.sprintf "%s JE %d vs paper %d" a.Casestudy.name t.Core.Dwell.je p.Casestudy.p_je)
    true
    (within_tol t.Core.Dwell.je p.Casestudy.p_je);
  check_bool
    (Printf.sprintf "%s T*w %d vs paper %d" a.Casestudy.name t.Core.Dwell.t_w_max
       p.Casestudy.p_t_w_max)
    true
    (within_tol t.Core.Dwell.t_w_max p.Casestudy.p_t_w_max);
  (* per-entry comparison over the common index range *)
  let common =
    Int.min (Array.length t.Core.Dwell.t_dw_min) (Array.length p.Casestudy.p_t_dw_min)
  in
  for i = 0 to common - 1 do
    check_bool
      (Printf.sprintf "%s T-dw[%d]" a.Casestudy.name i)
      true
      (within_tol t.Core.Dwell.t_dw_min.(i) p.Casestudy.p_t_dw_min.(i));
    check_bool
      (Printf.sprintf "%s T+dw[%d]" a.Casestudy.name i)
      true
      (within_tol t.Core.Dwell.t_dw_max.(i) p.Casestudy.p_t_dw_max.(i))
  done

let table1_cases =
  List.map
    (fun (a : Casestudy.app) ->
      Alcotest.test_case ("Table 1 row " ^ a.Casestudy.name) `Slow (fun () ->
          check_row a))
    Casestudy.all

(* exact reproductions for the rows whose constants are not truncated *)
let test_c1_exact () =
  let t = table_of Casestudy.c1 in
  let p = Casestudy.paper Casestudy.c1 in
  check_int "JT" p.Casestudy.p_jt t.Core.Dwell.jt;
  check_int "JE" p.Casestudy.p_je t.Core.Dwell.je;
  check_int "T*w" p.Casestudy.p_t_w_max t.Core.Dwell.t_w_max;
  check_bool "T-dw exact" true (t.Core.Dwell.t_dw_min = p.Casestudy.p_t_dw_min);
  check_bool "T+dw exact" true (t.Core.Dwell.t_dw_max = p.Casestudy.p_t_dw_max)

let test_c6_exact () =
  let t = table_of Casestudy.c6 in
  let p = Casestudy.paper Casestudy.c6 in
  check_int "JT" p.Casestudy.p_jt t.Core.Dwell.jt;
  check_int "JE" p.Casestudy.p_je t.Core.Dwell.je;
  check_bool "T-dw exact" true (t.Core.Dwell.t_dw_min = p.Casestudy.p_t_dw_min);
  check_bool "T+dw exact" true (t.Core.Dwell.t_dw_max = p.Casestudy.p_t_dw_max)

(* ------------------------------------------------------------------ *)
(* Sec. 3.1, Fig. 2: the motivational example *)

let fig2_settling mode_at gains =
  let y =
    Control.Switched.run Casestudy.c1.Casestudy.plant gains mode_at
      (Control.Switched.disturbed Casestudy.c1.Casestudy.plant)
      300
  in
  Control.Settle.settling_index y

let test_fig2_settling_times () =
  let g = Casestudy.c1.Casestudy.gains in
  let gu = Casestudy.c1_unstable_pair in
  (* K_T alone: 0.18 s = 9 samples *)
  check_bool "KT" true (fig2_settling (Core.Strategy.pure Control.Switched.Mt) g = Some 9);
  (* K_E alone: 0.70 s = 35 samples (paper plots ~0.68 s) *)
  check_bool "KEs" true (fig2_settling (Core.Strategy.pure Control.Switched.Me) g = Some 35);
  check_bool "KEu" true (fig2_settling (Core.Strategy.pure Control.Switched.Me) gu = Some 35);
  (* 4 ME + 4 MT + ME...: 0.28 s with the stable pair *)
  let seq k = Core.Strategy.mode_at ~t_w:4 ~t_dw:4 k in
  check_bool "stable mix" true (fig2_settling seq g = Some 14);
  (* 0.58 s with the non-switching-stable pair *)
  check_bool "unstable mix" true (fig2_settling seq gu = Some 29)

let test_fig4_t_w_zero_matches_dedicated () =
  (* paper: for T_w = 0, leaving MT after T+_dw = 6 samples still gives
     the dedicated-slot settling time of 0.18 s *)
  let t = table_of Casestudy.c1 in
  check_int "T+dw(0)" 6 t.Core.Dwell.t_dw_max.(0);
  check_int "J at T+dw(0) = JT" t.Core.Dwell.jt t.Core.Dwell.j_at_max.(0)

let () =
  Alcotest.run "casestudy"
    [
      ( "data",
        [
          Alcotest.test_case "consistency" `Quick test_app_data_consistency;
          Alcotest.test_case "find" `Quick test_find;
          Alcotest.test_case "closed loops stable" `Quick test_closed_loops_stable;
        ] );
      ("table1", table1_cases);
      ( "exact rows",
        [
          Alcotest.test_case "C1 exact" `Quick test_c1_exact;
          Alcotest.test_case "C6 exact" `Quick test_c6_exact;
        ] );
      ( "motivational example",
        [
          Alcotest.test_case "Fig. 2 settling times" `Quick test_fig2_settling_times;
          Alcotest.test_case "Fig. 4 Tw=0 saturation" `Quick test_fig4_t_w_zero_matches_dedicated;
        ] );
    ]
