(* Tests for the scheduling substrate: appspec validation, the
   single-slot transition function, the arbiter wrapper, and the
   baseline analyses. *)

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let spec ?(id = 0) ?(name = "A") ?(t_w_max = 2) ?(t_dw_min = [| 2; 2; 2 |])
    ?(t_dw_max = [| 3; 3; 3 |]) ?(r = 20) () =
  Sched.Appspec.make ~id ~name ~t_w_max ~t_dw_min ~t_dw_max ~r

(* ------------------------------------------------------------------ *)
(* Appspec *)

let test_appspec_ok () =
  let s = spec () in
  check_int "max service" 5 (Sched.Appspec.max_service s);
  let s2 = Sched.Appspec.with_id s 3 in
  check_int "with_id" 3 s2.Sched.Appspec.id

let test_appspec_validation () =
  let raises f = try f (); false with Invalid_argument _ -> true in
  check_bool "bad array length" true
    (raises (fun () -> ignore (spec ~t_dw_min:[| 2; 2 |] ())));
  check_bool "zero dwell" true
    (raises (fun () -> ignore (spec ~t_dw_min:[| 0; 2; 2 |] ())));
  check_bool "min>max" true
    (raises (fun () -> ignore (spec ~t_dw_min:[| 4; 4; 4 |] ())));
  check_bool "r too small" true (raises (fun () -> ignore (spec ~r:5 ())))

(* ------------------------------------------------------------------ *)
(* Slot_state: single application *)

let single = [| spec () |]

let tick specs st disturbed = Sched.Slot_state.tick specs st ~disturbed

let test_single_app_lifecycle () =
  let st = Sched.Slot_state.initial single in
  check_bool "starts steady" true (Sched.Slot_state.all_steady st);
  (* disturb: admitted and granted in the same tick (slot free) *)
  let st, out = tick single st [ 0 ] in
  check_bool "granted at wait 0" true (out.Sched.Slot_state.granted = [ (0, 0) ]);
  check_bool "owner" true (st.Sched.Slot_state.owner = Some 0);
  (* dwell: t_dw_max(0) = 3, so release happens when ct reaches 3 *)
  let st, _ = tick single st [] in
  let st, _ = tick single st [] in
  let st, out = tick single st [] in
  check_bool "released" true (out.Sched.Slot_state.released = [ 0 ]);
  check_bool "slot free" true (st.Sched.Slot_state.owner = None);
  (match Sched.Slot_state.phase st 0 with
   | Sched.Slot_state.Safe { age } -> check_int "age from seen" 3 age
   | _ -> Alcotest.fail "expected Safe");
  (* quiet until r = 20 samples since seen *)
  let st = ref st in
  for _ = 1 to 16 do
    let st', _ = tick single !st [] in
    st := st'
  done;
  (match Sched.Slot_state.phase !st 0 with
   | Sched.Slot_state.Safe { age } -> check_int "age 19" 19 age
   | _ -> Alcotest.fail "still safe");
  let st', _ = tick single !st [] in
  check_bool "steady again" true (Sched.Slot_state.all_steady st')

let test_error_when_never_granted () =
  (* two apps, one hogs the slot with a huge dwell; the other misses *)
  let hog =
    spec ~id:0 ~name:"H" ~t_w_max:0 ~t_dw_min:[| 10 |] ~t_dw_max:[| 10 |] ~r:30 ()
  in
  let victim =
    spec ~id:1 ~name:"V" ~t_w_max:2 ~t_dw_min:[| 1; 1; 1 |]
      ~t_dw_max:[| 2; 2; 2 |] ~r:20 ()
  in
  let specs = [| hog; victim |] in
  let st = Sched.Slot_state.initial specs in
  let st, _ = tick specs st [ 0 ] in
  (* hog granted *)
  let st, _ = tick specs st [ 1 ] in
  (* victim waits; hog's min dwell is 10 so no preemption *)
  let st = ref st in
  let errors = ref [] in
  for _ = 1 to 4 do
    let st', out = tick specs !st [] in
    errors := out.Sched.Slot_state.new_errors @ !errors;
    st := st'
  done;
  check_bool "victim missed" true (List.mem 1 !errors);
  check_bool "error phase" true (Sched.Slot_state.has_error !st)

let test_preemption_after_min_dwell () =
  let a =
    spec ~id:0 ~name:"A" ~t_w_max:5
      ~t_dw_min:(Array.make 6 2) ~t_dw_max:(Array.make 6 5) ~r:30 ()
  in
  let b =
    spec ~id:1 ~name:"B" ~t_w_max:5
      ~t_dw_min:(Array.make 6 2) ~t_dw_max:(Array.make 6 5) ~r:30 ()
  in
  let specs = [| a; b |] in
  let st = Sched.Slot_state.initial specs in
  let st, _ = tick specs st [ 0 ] in
  (* A granted at ct=0 *)
  let st, out = tick specs st [ 1 ] in
  (* B arrives; A has ct=1 < dt_min=2: no preemption yet *)
  check_bool "no preemption yet" true (out.Sched.Slot_state.preempted = []);
  check_bool "A still owns" true (st.Sched.Slot_state.owner = Some 0);
  let st, out = tick specs st [] in
  (* ct=2 = dt_min: preempt *)
  check_bool "A preempted" true (out.Sched.Slot_state.preempted = [ 0 ]);
  check_bool "B granted" true
    (List.mem_assoc 1 out.Sched.Slot_state.granted);
  check_bool "B owns" true (st.Sched.Slot_state.owner = Some 1)

let test_edf_orders_by_slack () =
  (* tighter T*_w gets the slot first on simultaneous arrival *)
  let tight =
    spec ~id:0 ~name:"tight" ~t_w_max:1 ~t_dw_min:[| 1; 1 |]
      ~t_dw_max:[| 1; 1 |] ~r:20 ()
  in
  let loose =
    spec ~id:1 ~name:"loose" ~t_w_max:8 ~t_dw_min:(Array.make 9 1)
      ~t_dw_max:(Array.make 9 1) ~r:20 ()
  in
  let specs = [| tight; loose |] in
  let st = Sched.Slot_state.initial specs in
  (* arrival order loose-then-tight must still serve tight first *)
  let st, out = tick specs st [ 1; 0 ] in
  check_bool "tight granted first" true
    (List.mem_assoc 0 out.Sched.Slot_state.granted);
  check_bool "loose waits" true
    (match Sched.Slot_state.phase st 1 with
     | Sched.Slot_state.Waiting _ -> true
     | _ -> false)

let test_tie_break_by_arrival_order () =
  let mk id name =
    spec ~id ~name ~t_w_max:3 ~t_dw_min:(Array.make 4 1)
      ~t_dw_max:(Array.make 4 1) ~r:20 ()
  in
  let specs = [| mk 0 "A"; mk 1 "B" |] in
  let st = Sched.Slot_state.initial specs in
  let _, out = tick specs st [ 1; 0 ] in
  (* equal slack: B registered first, so B is served first *)
  check_bool "B first" true (List.mem_assoc 1 out.Sched.Slot_state.granted)

let test_disturb_non_steady_rejected () =
  let specs = single in
  let st = Sched.Slot_state.initial specs in
  let st, _ = tick specs st [ 0 ] in
  check_bool "raises" true
    (try
       ignore (tick specs st [ 0 ]);
       false
     with Invalid_argument _ -> true)

let test_force_steady () =
  let specs = single in
  let st = Sched.Slot_state.initial specs in
  let st, _ = tick specs st [ 0 ] in
  let st = ref st in
  for _ = 1 to 3 do
    let st', _ = tick specs !st [] in
    st := st'
  done;
  (match Sched.Slot_state.phase !st 0 with
   | Sched.Slot_state.Safe _ -> ()
   | _ -> Alcotest.fail "expected safe");
  let forced = Sched.Slot_state.force_steady !st ~keep_quiet:(fun _ -> false) in
  check_bool "snapped" true (Sched.Slot_state.all_steady forced);
  let kept = Sched.Slot_state.force_steady !st ~keep_quiet:(fun _ -> true) in
  check_bool "kept" true (Sched.Slot_state.equal kept !st)

let test_lazy_preemption_postponed () =
  (* under Lazy_preempt the occupant keeps the slot until a waiter is on
     its last admissible sample *)
  let mk id name =
    spec ~id ~name ~t_w_max:5 ~t_dw_min:(Array.make 6 2)
      ~t_dw_max:(Array.make 6 8) ~r:30 ()
  in
  let specs = [| mk 0 "A"; mk 1 "B" |] in
  let policy = Sched.Slot_state.Lazy_preempt in
  let st = Sched.Slot_state.initial specs in
  let st, _ = Sched.Slot_state.tick ~policy specs st ~disturbed:[ 0 ] in
  let st, _ = Sched.Slot_state.tick ~policy specs st ~disturbed:[ 1 ] in
  (* eager would preempt at ct = 2; lazy waits until B's wt = 5 *)
  let st = ref st in
  let preempt_at = ref (-1) in
  for k = 2 to 8 do
    let st', out = Sched.Slot_state.tick ~policy specs !st ~disturbed:[] in
    if out.Sched.Slot_state.preempted <> [] && !preempt_at < 0 then preempt_at := k;
    st := st'
  done;
  check_int "preempted when B at last chance" 6 !preempt_at;
  check_bool "no error" false (Sched.Slot_state.has_error !st)

(* ------------------------------------------------------------------ *)
(* Arbiter *)

let test_arbiter_owner_trace () =
  let arb = Sched.Arbiter.create single in
  Sched.Arbiter.run arb ~horizon:6 ~disturbances:[ (1, 0) ];
  let trace = Sched.Arbiter.owner_trace arb in
  check_int "length" 6 (Array.length trace);
  check_bool "idle first" true (trace.(0) = None);
  check_bool "owned at 1" true (trace.(1) = Some 0);
  check_bool "owned through dwell" true (trace.(3) = Some 0);
  check_bool "released by 4" true (trace.(4) = None);
  check_bool "no errors" true (Sched.Arbiter.errors arb = [])

let test_arbiter_log_order () =
  let arb = Sched.Arbiter.create single in
  Sched.Arbiter.run arb ~horizon:6 ~disturbances:[ (0, 0) ];
  match Sched.Arbiter.log arb with
  | { event = `Grant (0, 0); sample = 0 } :: { event = `Release 0; sample = 3 } :: _ -> ()
  | _ -> Alcotest.fail "unexpected log"

let test_arbiter_past_disturbance_rejected () =
  let arb = Sched.Arbiter.create single in
  Sched.Arbiter.run arb ~horizon:2 ~disturbances:[];
  check_bool "raises" true
    (try
       Sched.Arbiter.run arb ~horizon:2 ~disturbances:[ (0, 0) ];
       false
     with Invalid_argument _ -> true)

(* ------------------------------------------------------------------ *)
(* Baseline *)

let bspec ~id ~name ~w_star ~c_occ ~r =
  Sched.Baseline.make_spec ~id ~name ~w_star ~c_occ ~r

let test_baseline_single_always_schedulable () =
  let s = bspec ~id:0 ~name:"A" ~w_star:5 ~c_occ:10 ~r:50 in
  check_bool "dm" true (Sched.Baseline.schedulable Sched.Baseline.Dm [ s ]);
  check_bool "delayed" true
    (Sched.Baseline.schedulable Sched.Baseline.Delayed [ s ])

let test_baseline_blocking () =
  (* high-priority app with deadline smaller than the blocker's
     occupancy fails under DM but passes with delayed requests *)
  let hp = bspec ~id:0 ~name:"hp" ~w_star:5 ~c_occ:3 ~r:50 in
  let lp = bspec ~id:1 ~name:"lp" ~w_star:30 ~c_occ:8 ~r:60 in
  check_bool "dm blocked" false
    (Sched.Baseline.schedulable Sched.Baseline.Dm [ hp; lp ]);
  check_bool "delayed ok" true
    (Sched.Baseline.schedulable Sched.Baseline.Delayed [ hp; lp ])

let test_baseline_interference () =
  (* two identical apps: the lower-priority one waits out one occupancy *)
  let a = bspec ~id:0 ~name:"a" ~w_star:10 ~c_occ:6 ~r:40 in
  let b = bspec ~id:1 ~name:"b" ~w_star:10 ~c_occ:6 ~r:40 in
  (match Sched.Baseline.response_bound Sched.Baseline.Dm [ a; b ] b with
   | Some bound -> check_int "b waits for a" 6 bound
   | None -> Alcotest.fail "expected schedulable");
  check_bool "pair fits" true (Sched.Baseline.schedulable Sched.Baseline.Dm [ a; b ])

let test_baseline_first_fit () =
  let mk id w c = bspec ~id ~name:(string_of_int id) ~w_star:w ~c_occ:c ~r:100 in
  (* three apps where any two fit but three do not: a pair costs 6 (one
     occupancy of blocking or interference) <= 10, a triple costs 12 *)
  let specs = [ mk 0 10 6; mk 1 10 6; mk 2 10 6 ] in
  let slots = Sched.Baseline.first_fit Sched.Baseline.Dm specs in
  check_int "two slots" 2 (List.length slots);
  (match slots with
   | [ s1; s2 ] ->
     check_int "first slot pair" 2 (List.length s1);
     check_int "second slot single" 1 (List.length s2)
   | _ -> Alcotest.fail "unexpected packing")

let test_baseline_validation () =
  check_bool "bad c" true
    (try ignore (bspec ~id:0 ~name:"x" ~w_star:1 ~c_occ:0 ~r:10); false
     with Invalid_argument _ -> true)

(* ------------------------------------------------------------------ *)
(* Properties *)

let gen_small_spec =
  QCheck2.Gen.(
    let* t_w_max = int_range 0 4 in
    let* dmin = int_range 1 3 in
    let* extra = int_range 0 3 in
    let dmax = dmin + extra in
    let* r = int_range (t_w_max + dmax + 1) (t_w_max + dmax + 15) in
    return
      (Sched.Appspec.make ~id:0 ~name:"P" ~t_w_max
         ~t_dw_min:(Array.make (t_w_max + 1) dmin)
         ~t_dw_max:(Array.make (t_w_max + 1) dmax)
         ~r))

let gen_disturbance_plan =
  QCheck2.Gen.(list_size (int_range 0 6) (int_range 0 40))

let run_pair spec1 spec2 plan1 plan2 =
  (* execute a horizon with best-effort disturbances: a disturbance is
     dropped when its app is not steady (keeps the sporadic model) *)
  let specs = [| spec1; Sched.Appspec.with_id spec2 1 |] in
  let st = ref (Sched.Slot_state.initial specs) in
  let owners = ref [] in
  let violations = ref false in
  for k = 0 to 60 do
    let want =
      (if List.mem k plan1 then [ 0 ] else [])
      @ if List.mem k plan2 then [ 1 ] else []
    in
    let disturbed =
      List.filter
        (fun id ->
          match Sched.Slot_state.phase !st id with
          | Sched.Slot_state.Steady -> true
          | _ -> false)
        want
    in
    let st', out = Sched.Slot_state.tick specs !st ~disturbed in
    (* safety invariant: preemption only after the min dwell *)
    List.iter
      (fun id ->
        match Sched.Slot_state.phase !st id with
        | Sched.Slot_state.Running { ct; dt_min; _ } ->
          (* this app was running before the tick; if preempted now,
             its ct+1 must be >= dt_min *)
          if List.mem id out.Sched.Slot_state.preempted && ct + 1 < dt_min then
            violations := true
        | _ -> ())
      [ 0; 1 ];
    owners := st'.Sched.Slot_state.owner :: !owners;
    st := st'
  done;
  (!owners, !violations)

let prop_min_dwell_respected =
  QCheck2.Test.make ~name:"preemption honours the minimum dwell" ~count:60
    QCheck2.Gen.(quad gen_small_spec gen_small_spec gen_disturbance_plan gen_disturbance_plan)
    (fun (s1, s2, p1, p2) ->
      let _, violations = run_pair s1 s2 p1 p2 in
      not violations)

let prop_single_owner =
  QCheck2.Test.make ~name:"at most one owner, owner is always Running"
    ~count:60
    QCheck2.Gen.(quad gen_small_spec gen_small_spec gen_disturbance_plan gen_disturbance_plan)
    (fun (s1, s2, p1, p2) ->
      let specs = [| s1; Sched.Appspec.with_id s2 1 |] in
      let st = ref (Sched.Slot_state.initial specs) in
      let ok = ref true in
      for k = 0 to 50 do
        let disturbed =
          List.filter
            (fun id ->
              (match Sched.Slot_state.phase !st id with
               | Sched.Slot_state.Steady -> true
               | _ -> false)
              && List.mem k (if id = 0 then p1 else p2))
            [ 0; 1 ]
        in
        let st', _ = Sched.Slot_state.tick specs !st ~disturbed in
        (match st'.Sched.Slot_state.owner with
         | Some id ->
           (match Sched.Slot_state.phase st' id with
            | Sched.Slot_state.Running _ -> ()
            | _ -> ok := false)
         | None ->
           Array.iteri
             (fun _ p ->
               match p with
               | Sched.Slot_state.Running _ -> ok := false
               | _ -> ())
             st'.Sched.Slot_state.phases);
        st := st'
      done;
      !ok)

let prop_buffer_sorted_by_slack =
  QCheck2.Test.make ~name:"buffer is EDF-sorted at every tick" ~count:60
    QCheck2.Gen.(quad gen_small_spec gen_small_spec gen_disturbance_plan gen_disturbance_plan)
    (fun (s1, s2, p1, p2) ->
      let specs = [| s1; Sched.Appspec.with_id s2 1 |] in
      let st = ref (Sched.Slot_state.initial specs) in
      let ok = ref true in
      for k = 0 to 50 do
        let disturbed =
          List.filter
            (fun id ->
              (match Sched.Slot_state.phase !st id with
               | Sched.Slot_state.Steady -> true
               | _ -> false)
              && List.mem k (if id = 0 then p1 else p2))
            [ 0; 1 ]
        in
        let st', _ = Sched.Slot_state.tick specs !st ~disturbed in
        let slack id =
          match Sched.Slot_state.phase st' id with
          | Sched.Slot_state.Waiting { wt } -> specs.(id).Sched.Appspec.t_w_max - wt
          | _ -> max_int
        in
        let rec sorted = function
          | a :: (b :: _ as rest) -> slack a <= slack b && sorted rest
          | [ _ ] | [] -> true
        in
        if not (sorted st'.Sched.Slot_state.buffer) then ok := false;
        st := st'
      done;
      !ok)

let prop_lazy_never_better_waits =
  (* lazy preemption can only lengthen waits: any wait observed under
     eager scheduling with a fixed disturbance plan is no longer than
     the lazy one for the same plan *)
  QCheck2.Test.make ~name:"lazy preemption never shortens a grant wait"
    ~count:40
    QCheck2.Gen.(quad gen_small_spec gen_small_spec gen_disturbance_plan gen_disturbance_plan)
    (fun (s1, s2, p1, p2) ->
      let specs = [| s1; Sched.Appspec.with_id s2 1 |] in
      let run policy =
        let st = ref (Sched.Slot_state.initial specs) in
        let waits = ref [] in
        for k = 0 to 50 do
          let disturbed =
            List.filter
              (fun id ->
                (match Sched.Slot_state.phase !st id with
                 | Sched.Slot_state.Steady -> true
                 | _ -> false)
                && List.mem k (if id = 0 then p1 else p2))
              [ 0; 1 ]
          in
          let st', out = Sched.Slot_state.tick ~policy specs !st ~disturbed in
          List.iter (fun g -> waits := g :: !waits) out.Sched.Slot_state.granted;
          st := st'
        done;
        List.rev !waits
      in
      let sum l = List.fold_left (fun a (_, w) -> a + w) 0 l in
      let eager = run Sched.Slot_state.Eager_preempt in
      let lazy_ = run Sched.Slot_state.Lazy_preempt in
      (* same grant count implies comparable schedules; compare total
         waiting *)
      List.length eager <> List.length lazy_ || sum eager <= sum lazy_)

let prop_error_is_absorbing =
  QCheck2.Test.make ~name:"error phases never disappear" ~count:40
    QCheck2.Gen.(quad gen_small_spec gen_small_spec gen_disturbance_plan gen_disturbance_plan)
    (fun (s1, s2, p1, p2) ->
      (* craft contention-heavy plans against tight specs *)
      let tighten (s : Sched.Appspec.t) =
        Sched.Appspec.make ~id:s.Sched.Appspec.id ~name:s.Sched.Appspec.name
          ~t_w_max:0
          ~t_dw_min:[| Array.fold_left Int.max 1 s.Sched.Appspec.t_dw_min |]
          ~t_dw_max:[| Array.fold_left Int.max 1 s.Sched.Appspec.t_dw_max |]
          ~r:s.Sched.Appspec.r
      in
      let specs = [| tighten s1; Sched.Appspec.with_id (tighten s2) 1 |] in
      let st = ref (Sched.Slot_state.initial specs) in
      let errored = ref false in
      let ok = ref true in
      for k = 0 to 40 do
        let disturbed =
          List.filter
            (fun id ->
              (match Sched.Slot_state.phase !st id with
               | Sched.Slot_state.Steady -> true
               | _ -> false)
              && List.mem k (if id = 0 then p1 else p2))
            [ 0; 1 ]
        in
        let st', _ = Sched.Slot_state.tick specs !st ~disturbed in
        if !errored && not (Sched.Slot_state.has_error st') then ok := false;
        if Sched.Slot_state.has_error st' then errored := true;
        st := st'
      done;
      !ok)

let props =
  List.map QCheck_alcotest.to_alcotest
    [
      prop_min_dwell_respected;
      prop_single_owner;
      prop_buffer_sorted_by_slack;
      prop_lazy_never_better_waits;
      prop_error_is_absorbing;
    ]

let () =
  Alcotest.run "sched"
    [
      ( "appspec",
        [
          Alcotest.test_case "construction" `Quick test_appspec_ok;
          Alcotest.test_case "validation" `Quick test_appspec_validation;
        ] );
      ( "slot_state",
        [
          Alcotest.test_case "single app lifecycle" `Quick test_single_app_lifecycle;
          Alcotest.test_case "deadline miss" `Quick test_error_when_never_granted;
          Alcotest.test_case "preemption" `Quick test_preemption_after_min_dwell;
          Alcotest.test_case "EDF order" `Quick test_edf_orders_by_slack;
          Alcotest.test_case "tie break" `Quick test_tie_break_by_arrival_order;
          Alcotest.test_case "sporadic model enforced" `Quick test_disturb_non_steady_rejected;
          Alcotest.test_case "force_steady" `Quick test_force_steady;
          Alcotest.test_case "lazy preemption" `Quick test_lazy_preemption_postponed;
        ] );
      ( "arbiter",
        [
          Alcotest.test_case "owner trace" `Quick test_arbiter_owner_trace;
          Alcotest.test_case "log order" `Quick test_arbiter_log_order;
          Alcotest.test_case "past disturbance" `Quick test_arbiter_past_disturbance_rejected;
        ] );
      ( "baseline",
        [
          Alcotest.test_case "single app" `Quick test_baseline_single_always_schedulable;
          Alcotest.test_case "blocking" `Quick test_baseline_blocking;
          Alcotest.test_case "interference" `Quick test_baseline_interference;
          Alcotest.test_case "first fit" `Quick test_baseline_first_fit;
          Alcotest.test_case "validation" `Quick test_baseline_validation;
        ] );
      ("properties", props);
    ]
