(* Tests for the control substrate: plants, feedback, pole placement,
   LQR, switched simulation, settling, switching stability. *)

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_float = Alcotest.(check (float 1e-9))
let check_float_loose = Alcotest.(check (float 1e-6))

let double_integrator =
  (* x1' = x1 + h x2, x2' = x2 + h u with h = 0.1 *)
  Control.Plant.make
    ~phi:(Linalg.Mat.of_rows [ [ 1.; 0.1 ]; [ 0.; 1. ] ])
    ~gamma:[| 0.; 0.1 |] ~c:[| 1.; 0. |] ~h:0.1

let scalar_plant = Control.Plant.scalar ~phi:0.9 ~gamma:0.5 ~c:1. ~h:0.02

(* ------------------------------------------------------------------ *)
(* Plant *)

let test_plant_basics () =
  check_int "order" 2 (Control.Plant.order double_integrator);
  let x = [| 1.; 2. |] in
  let x' = Control.Plant.step double_integrator x 0.5 in
  check_float "x1'" 1.2 x'.(0);
  check_float "x2'" 2.05 x'.(1);
  check_float "output" 1. (Control.Plant.output double_integrator x)

let test_plant_validation () =
  Alcotest.check_raises "gamma dim" (Invalid_argument "Plant.make: gamma dimension")
    (fun () ->
      ignore
        (Control.Plant.make
           ~phi:(Linalg.Mat.identity 2)
           ~gamma:[| 1. |] ~c:[| 1.; 0. |] ~h:0.1));
  Alcotest.check_raises "bad h"
    (Invalid_argument "Plant.make: non-positive sampling period") (fun () ->
      ignore
        (Control.Plant.make
           ~phi:(Linalg.Mat.identity 1)
           ~gamma:[| 1. |] ~c:[| 1. |] ~h:0.))

let test_plant_stability () =
  check_bool "stable scalar" true (Control.Plant.is_open_loop_stable scalar_plant);
  check_bool "integrator not stable" false
    (Control.Plant.is_open_loop_stable double_integrator)

(* ------------------------------------------------------------------ *)
(* Feedback *)

let test_closed_loop_tt () =
  let k = [| 0.2 |] in
  let cl = Control.Feedback.closed_loop_tt scalar_plant k in
  check_float "phi - gamma k" (0.9 -. (0.5 *. 0.2)) (Linalg.Mat.get cl 0 0)

let test_augmented_shapes () =
  let phi_a, gamma_a = Control.Feedback.augmented_open_loop double_integrator in
  check_int "aug rows" 3 (Linalg.Mat.rows phi_a);
  check_float "gamma coupling" 0.1 (Linalg.Mat.get phi_a 1 2);
  check_float "input enters u-state" 1. gamma_a.(2);
  check_float "u-state no self" 0. (Linalg.Mat.get phi_a 2 2)

let test_closed_loop_et_dynamics () =
  (* applying the augmented closed loop must equal the two-step manual
     computation of eq. (4)-(5) *)
  let ke = [| 0.3; 0.1 |] in
  let a = Control.Feedback.closed_loop_et scalar_plant ke in
  let z = [| 2.; 0.5 |] in
  let z' = Linalg.Mat.mul_vec a z in
  (* x' = 0.9*2 + 0.5*0.5, u' = -(0.3*2 + 0.1*0.5) *)
  check_float "x'" 2.05 z'.(0);
  check_float "u'" (-0.65) z'.(1)

let test_tt_augmented_consistency () =
  (* the augmented TT loop's x-block must equal the plain TT loop *)
  let kt = [| 1.0; 0.5 |] in
  let plain = Control.Feedback.closed_loop_tt double_integrator kt in
  let aug = Control.Feedback.closed_loop_tt_augmented double_integrator kt in
  for i = 0 to 1 do
    for j = 0 to 1 do
      check_float "block match" (Linalg.Mat.get plain i j) (Linalg.Mat.get aug i j)
    done;
    check_float "u column zero" 0. (Linalg.Mat.get aug i 2)
  done;
  check_float "u row is -kt" (-1.0) (Linalg.Mat.get aug 2 0)

(* ------------------------------------------------------------------ *)
(* Controllability and pole placement *)

let test_controllability () =
  check_bool "double integrator controllable" true
    (Control.Ctrb.is_controllable double_integrator.Control.Plant.phi
       double_integrator.Control.Plant.gamma);
  (* a mode decoupled from the input *)
  let a = Linalg.Mat.of_rows [ [ 0.5; 0. ]; [ 0.; 0.7 ] ] in
  check_bool "uncontrollable" false (Control.Ctrb.is_controllable a [| 1.; 0. |])

let test_ackermann_places_poles () =
  let poles = [ (0.2, 0.); (0.4, 0.) ] in
  let k = Control.Pole_place.place_tt double_integrator poles in
  let cl = Control.Feedback.closed_loop_tt double_integrator k in
  let eigs = Linalg.Eig.eigenvalues cl in
  let mods = List.map Complex.norm eigs |> List.sort compare in
  (match mods with
   | [ a; b ] ->
     check_float_loose "pole 1" 0.2 a;
     check_float_loose "pole 2" 0.4 b
   | _ -> Alcotest.fail "expected 2 eigenvalues");
  check_bool "stable" true (Linalg.Eig.is_schur_stable cl)

let test_ackermann_complex_poles () =
  let poles = [ (0.3, 0.2) ] in
  (* conjugate pair counts twice *)
  let k = Control.Pole_place.place_tt double_integrator poles in
  let cl = Control.Feedback.closed_loop_tt double_integrator k in
  match Linalg.Eig.eigenvalues cl with
  | [ z1; z2 ] ->
    check_float_loose "re" 0.3 z1.Complex.re;
    check_float_loose "conj" 0.3 z2.Complex.re;
    check_float_loose "im magnitude" 0.2 (Float.abs z1.Complex.im)
  | _ -> Alcotest.fail "expected 2 eigenvalues"

let test_ackermann_et_design () =
  (* design a delayed-mode controller and check stability *)
  let poles = [ (0.1, 0.); (0.2, 0.); (0.3, 0.) ] in
  let ke = Control.Pole_place.place_et double_integrator poles in
  check_int "gain dimension" 3 (Linalg.Vec.dim ke);
  let cl = Control.Feedback.closed_loop_et double_integrator ke in
  check_bool "stable" true (Linalg.Eig.is_schur_stable cl)

let test_ackermann_uncontrollable () =
  let a = Linalg.Mat.of_rows [ [ 0.5; 0. ]; [ 0.; 0.7 ] ] in
  Alcotest.check_raises "uncontrollable" Control.Pole_place.Uncontrollable
    (fun () ->
      ignore (Control.Pole_place.place a [| 1.; 0. |] [ (0.1, 0.); (0.2, 0.) ]))

let test_pole_count_mismatch () =
  check_bool "wrong count raises" true
    (try
       ignore (Control.Pole_place.place_tt double_integrator [ (0.1, 0.) ]);
       false
     with Invalid_argument _ -> true)

(* ------------------------------------------------------------------ *)
(* LQR *)

let test_lqr_stabilizes () =
  let k = Control.Lqr.gain_tt double_integrator in
  let cl = Control.Feedback.closed_loop_tt double_integrator k in
  check_bool "stable" true (Linalg.Eig.is_schur_stable cl)

let test_lqr_riccati_fixed_point () =
  let a = double_integrator.Control.Plant.phi
  and b = double_integrator.Control.Plant.gamma in
  let q = Linalg.Mat.identity 2 and r = 1. in
  let k, p = Control.Lqr.solve ~a ~b ~q ~r () in
  (* p must satisfy the Riccati equation: p = q + a'pa - a'pb k *)
  let at = Linalg.Mat.transpose a in
  let pa = Linalg.Mat.mul p a in
  let apa = Linalg.Mat.mul at pa in
  let pb = Linalg.Mat.mul_vec p b in
  let apb = Linalg.Mat.mul_vec at pb in
  let rhs = Linalg.Mat.add q (Linalg.Mat.sub apa (Linalg.Mat.outer apb k)) in
  check_bool "riccati residual" true (Linalg.Mat.approx_equal ~tol:1e-8 p rhs)

let test_lqr_et_mode () =
  let k = Control.Lqr.gain_et double_integrator in
  check_int "augmented gain" 3 (Linalg.Vec.dim k);
  let cl = Control.Feedback.closed_loop_et double_integrator k in
  check_bool "stable" true (Linalg.Eig.is_schur_stable cl)

(* ------------------------------------------------------------------ *)
(* Switched simulation *)

let stable_gains =
  let kt = Control.Pole_place.place_tt double_integrator [ (0.1, 0.); (0.2, 0.) ] in
  let ke =
    Control.Pole_place.place_et double_integrator
      [ (0.5, 0.); (0.6, 0.); (0.4, 0.) ]
  in
  Control.Switched.make_gains double_integrator ~kt ~ke

let test_switched_mt_matches_closed_loop () =
  let s0 = Control.Switched.disturbed double_integrator in
  let states =
    Control.Switched.run_states double_integrator stable_gains
      (Core.Strategy.pure Control.Switched.Mt) s0 5
  in
  let cl = Control.Feedback.closed_loop_tt double_integrator stable_gains.Control.Switched.kt in
  let expected = ref s0.Control.Switched.x in
  Array.iteri
    (fun k st ->
      if k > 0 then expected := Linalg.Mat.mul_vec cl !expected;
      check_bool
        (Printf.sprintf "state %d" k)
        true
        (Linalg.Vec.approx_equal ~tol:1e-9 st.Control.Switched.x !expected))
    states

let test_switched_me_matches_augmented () =
  let s0 = Control.Switched.disturbed double_integrator in
  let a = Control.Feedback.closed_loop_et double_integrator stable_gains.Control.Switched.ke in
  let z = ref [| 1.; 0.; 0. |] in
  let states =
    Control.Switched.run_states double_integrator stable_gains
      (Core.Strategy.pure Control.Switched.Me) s0 6
  in
  Array.iteri
    (fun k st ->
      if k > 0 then z := Linalg.Mat.mul_vec a !z;
      check_float "x1" !z.(0) st.Control.Switched.x.(0);
      check_float "u_prev" !z.(2) st.Control.Switched.u_prev)
    states

let test_switched_mode_equal () =
  check_bool "mt=mt" true (Control.Switched.mode_equal Control.Switched.Mt Control.Switched.Mt);
  check_bool "mt<>me" false (Control.Switched.mode_equal Control.Switched.Mt Control.Switched.Me)

let test_switched_holds_input_across_switch () =
  (* first ME sample after MT must apply the last TT input *)
  let s0 = Control.Switched.disturbed double_integrator in
  let after_mt = Control.Switched.step double_integrator stable_gains Control.Switched.Mt s0 in
  let after_me = Control.Switched.step double_integrator stable_gains Control.Switched.Me after_mt in
  let expected = Control.Plant.step double_integrator after_mt.Control.Switched.x after_mt.Control.Switched.u_prev in
  check_bool "held input" true (Linalg.Vec.approx_equal expected after_me.Control.Switched.x)

(* ------------------------------------------------------------------ *)
(* Settling *)

let test_settling_basic () =
  let y = [| 1.0; 0.5; 0.01; 0.005; 0.001 |] in
  check_bool "settles at 2" true (Control.Settle.settling_index y = Some 2)

let test_settling_relapse () =
  (* a dip back above the band moves the settling index *)
  let y = [| 1.0; 0.01; 0.5; 0.01; 0.001 |] in
  check_bool "settles at 3" true (Control.Settle.settling_index y = Some 3)

let test_settling_never () =
  let y = [| 1.0; 0.5; 0.3 |] in
  check_bool "no settling" true (Control.Settle.settling_index y = None)

let test_settling_immediate () =
  let y = [| 0.001; 0.002 |] in
  check_bool "settled from start" true (Control.Settle.settling_index y = Some 0)

let test_settling_threshold_and_time () =
  let y = [| 1.0; 0.05; 0.01 |] in
  check_bool "custom threshold" true
    (Control.Settle.settling_index ~threshold:0.1 y = Some 1);
  check_bool "seconds" true
    (Control.Settle.settling_time ~h:0.02 y = Some 0.04);
  check_bool "within" true (Control.Settle.is_settled_within 2 y);
  check_bool "not within" false (Control.Settle.is_settled_within 1 y);
  check_float "peak" 1.0 (Control.Settle.peak y)

(* ------------------------------------------------------------------ *)
(* Switching stability (paper Sec. 3.1) *)

let test_c1_stable_pair_has_certificate () =
  let app = Casestudy.c1 in
  match Control.Switch_stab.analyze app.Casestudy.plant app.Casestudy.gains with
  | Control.Switch_stab.Common_lyapunov p ->
    check_bool "certificate PD" true (Linalg.Lyapunov.is_positive_definite p);
    let a_tt, a_et = Control.Switch_stab.closed_loops app.Casestudy.plant app.Casestudy.gains in
    let dec a =
      Linalg.Lyapunov.is_negative_definite
        (Linalg.Mat.sub (Linalg.Mat.mul (Linalg.Mat.transpose a) (Linalg.Mat.mul p a)) p)
    in
    check_bool "decreases TT" true (dec a_tt);
    check_bool "decreases ET" true (dec a_et)
  | Control.Switch_stab.Stable_modes -> Alcotest.fail "expected a certificate"
  | Control.Switch_stab.Unstable_mode _ -> Alcotest.fail "modes must be stable"

let test_c1_unstable_pair_no_certificate () =
  let app = Casestudy.c1 in
  match Control.Switch_stab.analyze app.Casestudy.plant Casestudy.c1_unstable_pair with
  | Control.Switch_stab.Stable_modes -> ()
  | Control.Switch_stab.Common_lyapunov _ ->
    Alcotest.fail "K^u_E pair should have no certificate"
  | Control.Switch_stab.Unstable_mode _ -> Alcotest.fail "modes are individually stable"

let test_unstable_mode_detected () =
  let bad_gains =
    Control.Switched.make_gains scalar_plant ~kt:[| -10. |] ~ke:[| 0.1; 0.1 |]
  in
  match Control.Switch_stab.analyze scalar_plant bad_gains with
  | Control.Switch_stab.Unstable_mode m ->
    check_bool "TT mode" true (Control.Switched.mode_equal m Control.Switched.Mt)
  | Control.Switch_stab.Common_lyapunov _ | Control.Switch_stab.Stable_modes ->
    Alcotest.fail "expected unstable mode"

(* ------------------------------------------------------------------ *)
(* Continuous models and discretisation *)

let test_expm_diagonal () =
  let a = Linalg.Mat.of_rows [ [ 1.; 0. ]; [ 0.; 2. ] ] in
  let e = Linalg.Expm.expm a in
  check_float_loose "e^1" (exp 1.) (Linalg.Mat.get e 0 0);
  check_float_loose "e^2" (exp 2.) (Linalg.Mat.get e 1 1);
  check_float "off-diagonal" 0. (Linalg.Mat.get e 0 1)

let test_expm_nilpotent () =
  (* exp of a strictly upper triangular matrix is exact polynomial *)
  let a = Linalg.Mat.of_rows [ [ 0.; 1. ]; [ 0.; 0. ] ] in
  let e = Linalg.Expm.expm a in
  check_float_loose "shear" 1. (Linalg.Mat.get e 0 1);
  check_float_loose "diag" 1. (Linalg.Mat.get e 0 0)

let test_expm_inverse_property () =
  let a = Linalg.Mat.of_rows [ [ 0.3; -1.2 ]; [ 0.7; -0.1 ] ] in
  let p = Linalg.Mat.mul (Linalg.Expm.expm a) (Linalg.Expm.expm (Linalg.Mat.scale (-1.) a)) in
  check_bool "exp(A)exp(-A)=I" true
    (Linalg.Mat.approx_equal ~tol:1e-9 p (Linalg.Mat.identity 2))

let test_zoh_matches_euler () =
  let m = Control.Continuous.dc_motor_position () in
  let pm = Control.Continuous.discretize m ~h:0.02 in
  let fine = 4000 in
  let dt = 0.02 /. float_of_int fine in
  let x = ref [| 0.; 0.; 0. |] in
  for _ = 1 to fine do
    let dx =
      Linalg.Vec.axpy 1.0 m.Control.Continuous.b
        (Linalg.Mat.mul_vec m.Control.Continuous.a !x)
    in
    x := Linalg.Vec.axpy dt dx !x
  done;
  let xd = Control.Plant.step pm [| 0.; 0.; 0. |] 1.0 in
  check_bool "zoh ~ fine euler" true (Linalg.Vec.approx_equal ~tol:1e-5 !x xd)

let test_cruise_discretisation_is_paper_c6 () =
  (* validates the C6 sign correction: e^{-0.001} = +0.999 *)
  let p = Control.Continuous.discretize (Control.Continuous.cruise_control ()) ~h:0.02 in
  check_bool "phi" true
    (Float.abs (Linalg.Mat.get p.Control.Plant.phi 0 0 -. 0.999) < 5e-7);
  check_bool "gamma" true
    (Float.abs (p.Control.Plant.gamma.(0) -. 1.999e-5) < 5e-10)

let test_speed_motor_discretisation_is_paper_c4 () =
  (* the paper's C4 is the CTMS DC-motor speed model at default
     parameters; the printed matrix is its ZOH discretisation *)
  let p = Control.Continuous.discretize (Control.Continuous.dc_motor_speed ()) ~h:0.02 in
  let c4 = (Casestudy.find "C4").Casestudy.plant in
  check_bool "phi matches" true
    (Linalg.Mat.approx_equal ~tol:5e-4 p.Control.Plant.phi c4.Control.Plant.phi);
  check_bool "gamma matches" true
    (Linalg.Vec.approx_equal ~tol:5e-4 p.Control.Plant.gamma c4.Control.Plant.gamma)

(* ------------------------------------------------------------------ *)
(* Design synthesis *)

let test_design_c1_plant () =
  let c1 = Casestudy.c1 in
  match Control.Design.synthesize c1.Casestudy.plant ~j_star:c1.Casestudy.j_star with
  | Error e -> Alcotest.fail e
  | Ok g ->
    let jt =
      Control.Settle.settling_index
        (Control.Switched.run c1.Casestudy.plant g
           (fun _ -> Control.Switched.Mt)
           (Control.Switched.disturbed c1.Casestudy.plant)
           300)
    in
    let je =
      Control.Settle.settling_index
        (Control.Switched.run c1.Casestudy.plant g
           (fun _ -> Control.Switched.Me)
           (Control.Switched.disturbed c1.Casestudy.plant)
           600)
    in
    (match (jt, je) with
     | Some jt, Some je ->
       check_bool "bracket" true (jt <= c1.Casestudy.j_star && c1.Casestudy.j_star < je)
     | _ -> Alcotest.fail "modes must settle")

let test_design_trace_records_rejections () =
  let o = Control.Design.search double_integrator ~j_star:20 in
  check_bool "non-empty trace" true (o.Control.Design.trace <> []);
  (match o.Control.Design.gains with
   | Some _ ->
     check_bool "accepted or fallback recorded" true
       (List.exists
          (fun c ->
            match c.Control.Design.verdict with
            | `Accepted -> true
            | `Rejected r -> String.equal r "no common Lyapunov certificate")
          o.Control.Design.trace)
   | None -> ())

let test_design_requires_controllable () =
  let p =
    Control.Plant.make
      ~phi:(Linalg.Mat.of_rows [ [ 0.5; 0. ]; [ 0.; 0.7 ] ])
      ~gamma:[| 1.; 0. |] ~c:[| 1.; 0. |] ~h:0.02
  in
  check_bool "raises" true
    (try
       ignore (Control.Design.search p ~j_star:10);
       false
     with Invalid_argument _ -> true)

let test_design_cqlf_required_mode () =
  (* with require_cqlf the search may fail; without it the same grid
     must do at least as well *)
  let soft = Control.Design.synthesize double_integrator ~j_star:20 in
  let hard =
    Control.Design.synthesize ~require_cqlf:true double_integrator ~j_star:20
  in
  (match (soft, hard) with
   | Error _, Ok _ -> Alcotest.fail "hard mode cannot beat soft mode"
   | _ -> ())

(* ------------------------------------------------------------------ *)
(* Properties *)

let gen_stable_poles n =
  QCheck2.Gen.(list_size (return n) (float_range 0.05 0.9))

let prop_pole_placement_roundtrip =
  QCheck2.Test.make ~name:"Ackermann places requested real poles" ~count:50
    (gen_stable_poles 2) (fun poles ->
      let poles = List.map (fun p -> (p, 0.)) poles in
      let k = Control.Pole_place.place_tt double_integrator poles in
      let cl = Control.Feedback.closed_loop_tt double_integrator k in
      let got =
        Linalg.Eig.eigenvalues cl |> List.map Complex.norm |> List.sort compare
      in
      let want = List.map (fun (p, _) -> p) poles |> List.sort compare in
      List.for_all2 (fun a b -> Float.abs (a -. b) < 1e-4) got want)

let prop_settling_monotone_threshold =
  QCheck2.Test.make ~name:"looser threshold never settles later" ~count:50
    QCheck2.Gen.(array_size (int_range 5 40) (float_range (-2.) 2.))
    (fun y ->
      let j1 = Control.Settle.settling_index ~threshold:0.1 y in
      let j2 = Control.Settle.settling_index ~threshold:0.5 y in
      match (j1, j2) with
      | Some a, Some b -> b <= a
      | None, Some _ | None, None -> true
      | Some _, None -> false)

let prop_switched_linear_in_state =
  QCheck2.Test.make ~name:"switched trajectories are linear in x0" ~count:40
    QCheck2.Gen.(pair (float_range (-2.) 2.) (float_range (-2.) 2.))
    (fun (a, b) ->
      let x0 = [| a; b |] in
      let modes k = if k mod 3 = 0 then Control.Switched.Mt else Control.Switched.Me in
      let run x =
        Control.Switched.run double_integrator stable_gains modes
          (Control.Switched.initial x) 10
      in
      let y1 = run x0 in
      let y2 = run (Linalg.Vec.scale 2. x0) in
      Array.for_all2 (fun u v -> Float.abs ((2. *. u) -. v) < 1e-9) y1 y2)

let props =
  List.map QCheck_alcotest.to_alcotest
    [
      prop_pole_placement_roundtrip;
      prop_settling_monotone_threshold;
      prop_switched_linear_in_state;
    ]

let () =
  Alcotest.run "control"
    [
      ( "plant",
        [
          Alcotest.test_case "basics" `Quick test_plant_basics;
          Alcotest.test_case "validation" `Quick test_plant_validation;
          Alcotest.test_case "stability" `Quick test_plant_stability;
        ] );
      ( "feedback",
        [
          Alcotest.test_case "TT closed loop" `Quick test_closed_loop_tt;
          Alcotest.test_case "augmented shapes" `Quick test_augmented_shapes;
          Alcotest.test_case "ET dynamics" `Quick test_closed_loop_et_dynamics;
          Alcotest.test_case "TT on augmented state" `Quick test_tt_augmented_consistency;
        ] );
      ( "pole placement",
        [
          Alcotest.test_case "controllability" `Quick test_controllability;
          Alcotest.test_case "real poles" `Quick test_ackermann_places_poles;
          Alcotest.test_case "complex poles" `Quick test_ackermann_complex_poles;
          Alcotest.test_case "delayed mode design" `Quick test_ackermann_et_design;
          Alcotest.test_case "uncontrollable" `Quick test_ackermann_uncontrollable;
          Alcotest.test_case "pole count" `Quick test_pole_count_mismatch;
        ] );
      ( "lqr",
        [
          Alcotest.test_case "stabilises" `Quick test_lqr_stabilizes;
          Alcotest.test_case "riccati fixed point" `Quick test_lqr_riccati_fixed_point;
          Alcotest.test_case "delayed mode" `Quick test_lqr_et_mode;
        ] );
      ( "switched",
        [
          Alcotest.test_case "MT equals closed loop" `Quick test_switched_mt_matches_closed_loop;
          Alcotest.test_case "ME equals augmented loop" `Quick test_switched_me_matches_augmented;
          Alcotest.test_case "mode equality" `Quick test_switched_mode_equal;
          Alcotest.test_case "input held across switch" `Quick test_switched_holds_input_across_switch;
        ] );
      ( "settle",
        [
          Alcotest.test_case "basic" `Quick test_settling_basic;
          Alcotest.test_case "relapse" `Quick test_settling_relapse;
          Alcotest.test_case "never" `Quick test_settling_never;
          Alcotest.test_case "immediate" `Quick test_settling_immediate;
          Alcotest.test_case "threshold and helpers" `Quick test_settling_threshold_and_time;
        ] );
      ( "continuous",
        [
          Alcotest.test_case "expm diagonal" `Quick test_expm_diagonal;
          Alcotest.test_case "expm nilpotent" `Quick test_expm_nilpotent;
          Alcotest.test_case "expm inverse" `Quick test_expm_inverse_property;
          Alcotest.test_case "zoh vs euler" `Quick test_zoh_matches_euler;
          Alcotest.test_case "cruise = paper C6" `Quick test_cruise_discretisation_is_paper_c6;
          Alcotest.test_case "speed motor = paper C4" `Quick test_speed_motor_discretisation_is_paper_c4;
        ] );
      ( "design",
        [
          Alcotest.test_case "C1 plant" `Quick test_design_c1_plant;
          Alcotest.test_case "trace records" `Quick test_design_trace_records_rejections;
          Alcotest.test_case "uncontrollable rejected" `Quick test_design_requires_controllable;
          Alcotest.test_case "cqlf-required mode" `Quick test_design_cqlf_required_mode;
        ] );
      ( "switching stability",
        [
          Alcotest.test_case "C1 stable pair" `Quick test_c1_stable_pair_has_certificate;
          Alcotest.test_case "C1 unstable pair" `Quick test_c1_unstable_pair_no_certificate;
          Alcotest.test_case "unstable mode" `Quick test_unstable_mode_detected;
        ] );
      ("properties", props);
    ]
